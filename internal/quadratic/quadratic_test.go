package quadratic

import (
	"testing"

	"tps/internal/cell"
	"tps/internal/gen"
	"tps/internal/netlist"
	"tps/internal/place"
)

func TestTwoAnchorsPullMiddle(t *testing.T) {
	nl := netlist.New("t", cell.Default())
	lib := nl.Lib
	l := nl.AddGate("l", lib.Cell("PAD"))
	l.SizeIdx = 0
	l.Fixed = true
	nl.MoveGate(l, 0, 50)
	r := nl.AddGate("r", lib.Cell("PAD"))
	r.SizeIdx = 0
	r.Fixed = true
	nl.MoveGate(r, 100, 50)
	g := nl.AddGate("g", lib.Cell("BUF"))
	nl.SetSize(g, 0)
	n1, n2 := nl.AddNet("n1"), nl.AddNet("n2")
	nl.Connect(l.Pin("O"), n1)
	nl.Connect(g.Pin("A"), n1)
	nl.Connect(g.Output(), n2)
	nl.Connect(r.Pin("I"), n2)
	Place(nl, 100, 100, DefaultOptions())
	if g.X < 25 || g.X > 75 {
		t.Errorf("gate x = %g, want near 50", g.X)
	}
}

func TestWeightsBias(t *testing.T) {
	nl := netlist.New("t", cell.Default())
	lib := nl.Lib
	l := nl.AddGate("l", lib.Cell("PAD"))
	l.SizeIdx = 0
	l.Fixed = true
	nl.MoveGate(l, 0, 50)
	r := nl.AddGate("r", lib.Cell("PAD"))
	r.SizeIdx = 0
	r.Fixed = true
	nl.MoveGate(r, 100, 50)
	g := nl.AddGate("g", lib.Cell("BUF"))
	nl.SetSize(g, 0)
	n1, n2 := nl.AddNet("n1"), nl.AddNet("n2")
	nl.Connect(l.Pin("O"), n1)
	nl.Connect(g.Pin("A"), n1)
	nl.Connect(g.Output(), n2)
	nl.Connect(r.Pin("I"), n2)
	nl.SetNetWeight(n1, 9) // pull hard toward the left pad
	Place(nl, 100, 100, DefaultOptions())
	if g.X >= 50 {
		t.Errorf("weighted gate x = %g, want < 50", g.X)
	}
}

func TestQuadraticBeatsScatterOnWirelength(t *testing.T) {
	d := gen.Generate(cell.Default(), gen.Params{NumGates: 400, Levels: 8, Seed: 21})
	// Scatter baseline.
	i := 0
	d.NL.Gates(func(g *netlist.Gate) {
		if !g.Fixed {
			d.NL.MoveGate(g, float64((i*2654435761)%1000)/1000*d.ChipW,
				float64((i*40503)%1000)/1000*d.ChipH)
			i++
		}
	})
	scatter := place.WirelengthHPWL(d.NL)
	Place(d.NL, d.ChipW, d.ChipH, DefaultOptions())
	quad := place.WirelengthHPWL(d.NL)
	if quad >= scatter {
		t.Errorf("quadratic WL %g not better than scatter %g", quad, scatter)
	}
}

func TestSpreadAvoidsClumping(t *testing.T) {
	d := gen.Generate(cell.Default(), gen.Params{NumGates: 400, Levels: 8, Seed: 22})
	Place(d.NL, d.ChipW, d.ChipH, DefaultOptions())
	// Quadrant occupancy: every quadrant should hold some cells.
	var q [4]int
	d.NL.Gates(func(g *netlist.Gate) {
		if g.Fixed {
			return
		}
		k := 0
		if g.X > d.ChipW/2 {
			k |= 1
		}
		if g.Y > d.ChipH/2 {
			k |= 2
		}
		q[k]++
	})
	for k, c := range q {
		if c == 0 {
			t.Errorf("quadrant %d empty after spreading: %v", k, q)
		}
	}
}

func TestAllPositionsInsideDie(t *testing.T) {
	d := gen.Generate(cell.Default(), gen.Params{NumGates: 300, Levels: 6, Seed: 23})
	Place(d.NL, d.ChipW, d.ChipH, DefaultOptions())
	d.NL.Gates(func(g *netlist.Gate) {
		if g.Fixed {
			return
		}
		if g.X < 0 || g.X > d.ChipW || g.Y < 0 || g.Y > d.ChipH {
			t.Errorf("gate %s at (%g,%g) outside %gx%g", g.Name, g.X, g.Y, d.ChipW, d.ChipH)
		}
	})
}

func TestZeroWeightIgnored(t *testing.T) {
	d := gen.Generate(cell.Default(), gen.Params{NumGates: 200, Levels: 6, Seed: 24})
	d.NL.Nets(func(n *netlist.Net) {
		if n.Kind == netlist.Clock {
			d.NL.SetNetWeight(n, 0)
		}
	})
	Place(d.NL, d.ChipW, d.ChipH, DefaultOptions()) // must not crash
	moved := 0
	d.NL.Gates(func(g *netlist.Gate) {
		if !g.Fixed && g.Placed {
			moved++
		}
	})
	if moved == 0 {
		t.Error("nothing placed")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		d := gen.Generate(cell.Default(), gen.Params{NumGates: 250, Levels: 6, Seed: 25})
		Place(d.NL, d.ChipW, d.ChipH, DefaultOptions())
		return place.WirelengthHPWL(d.NL)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic quadratic placement: %g vs %g", a, b)
	}
}

func TestEmptyDesign(t *testing.T) {
	nl := netlist.New("e", cell.Default())
	Place(nl, 100, 100, DefaultOptions()) // no movables: no panic
}

// TestWorkerInvariance requires the quadratic solve — parallel CG with
// pairwise-summed reductions plus the forked recursive spread — to land
// every gate on bit-identical coordinates at any worker count.
func TestWorkerInvariance(t *testing.T) {
	run := func(w int) (xs, ys []float64) {
		d := gen.Generate(cell.Default(), gen.Params{NumGates: 250, Levels: 6, Seed: 26})
		opt := DefaultOptions()
		opt.Workers = w
		Place(d.NL, d.ChipW, d.ChipH, opt)
		d.NL.Gates(func(g *netlist.Gate) {
			xs = append(xs, g.X)
			ys = append(ys, g.Y)
		})
		return xs, ys
	}
	x1, y1 := run(1)
	x8, y8 := run(8)
	for i := range x1 {
		if x1[i] != x8[i] || y1[i] != y8[i] {
			t.Fatalf("gate %d diverged across worker counts: (%v,%v) vs (%v,%v)",
				i, x1[i], y1[i], x8[i], y8[i])
		}
	}
}
