package power

import (
	"testing"

	"tps/internal/cell"
	"tps/internal/delay"
	"tps/internal/gen"
	"tps/internal/netlist"
	"tps/internal/steiner"
	"tps/internal/timing"
)

func rig(t *testing.T, gates int, seed int64) (*gen.Design, *delay.Calculator, *Analyzer) {
	t.Helper()
	d := gen.Generate(cell.Default(), gen.Params{NumGates: gates, Levels: 8, Seed: seed})
	nl := d.NL
	i := 0
	nl.Gates(func(g *netlist.Gate) {
		if !g.Fixed {
			nl.MoveGate(g, float64(i%20)*25, float64(i/20%20)*25)
			i++
		}
	})
	st := steiner.NewCache(nl)
	calc := delay.NewCalculator(nl, st, delay.Actual)
	a := New(nl, calc, d.Period)
	return d, calc, a
}

func TestActivityPropagation(t *testing.T) {
	nl := netlist.New("t", cell.Default())
	lib := nl.Lib
	pi := nl.AddGate("pi", lib.Cell("PAD"))
	pi.SizeIdx = 0
	pi.Fixed = true
	in := nl.AddNet("in")
	nl.Connect(pi.Pin("O"), in)
	inv := nl.AddGate("inv", lib.Cell("INV"))
	nl.SetSize(inv, 0)
	out := nl.AddNet("out")
	nl.Connect(inv.Pin("A"), in)
	nl.Connect(inv.Output(), out)
	st := steiner.NewCache(nl)
	calc := delay.NewCalculator(nl, st, delay.Actual)
	a := New(nl, calc, 1000)
	if got := a.Activity(in); got != a.PrimaryActivity {
		t.Errorf("PI activity = %g, want %g", got, a.PrimaryActivity)
	}
	// Inverters pass activity through unchanged.
	if got := a.Activity(out); got != a.PrimaryActivity {
		t.Errorf("INV output activity = %g, want %g", got, a.PrimaryActivity)
	}
}

func TestXorAmplifiesNandAttenuates(t *testing.T) {
	nl := netlist.New("t", cell.Default())
	lib := nl.Lib
	mk := func(master string) *netlist.Net {
		p1 := nl.AddGate("p", lib.Cell("PAD"))
		p1.SizeIdx = 0
		p1.Fixed = true
		p2 := nl.AddGate("p", lib.Cell("PAD"))
		p2.SizeIdx = 0
		p2.Fixed = true
		n1, n2 := nl.AddNet("a"), nl.AddNet("b")
		nl.Connect(p1.Pin("O"), n1)
		nl.Connect(p2.Pin("O"), n2)
		g := nl.AddGate("g", lib.Cell(master))
		nl.SetSize(g, 0)
		nl.Connect(g.Pin("A"), n1)
		nl.Connect(g.Pin("B"), n2)
		z := nl.AddNet("z")
		nl.Connect(g.Output(), z)
		return z
	}
	xorOut := mk("XOR2")
	nandOut := mk("NAND2")
	st := steiner.NewCache(nl)
	calc := delay.NewCalculator(nl, st, delay.Actual)
	a := New(nl, calc, 1000)
	if a.Activity(xorOut) <= a.Activity(nandOut) {
		t.Errorf("XOR activity %g not above NAND %g", a.Activity(xorOut), a.Activity(nandOut))
	}
}

func TestClockNetsSwitchEveryCycle(t *testing.T) {
	d, _, a := rig(t, 200, 1)
	d.NL.Nets(func(n *netlist.Net) {
		if n.Kind == netlist.Clock && n.Driver() != nil &&
			n.Driver().Gate.Cell.Function == cell.FuncClkBuf {
			if got := a.Activity(n); got != 1 {
				t.Errorf("clock leaf activity = %g, want 1", got)
			}
		}
	})
}

func TestTotalPositiveAndStable(t *testing.T) {
	_, _, a := rig(t, 300, 2)
	p1 := a.Total()
	p2 := a.Total()
	if p1 <= 0 {
		t.Fatalf("total power %g", p1)
	}
	if p1 != p2 {
		t.Fatalf("unstable: %g vs %g", p1, p2)
	}
}

func TestPowerTracksEdits(t *testing.T) {
	d, _, a := rig(t, 300, 3)
	before := a.Total()
	// Upsizing a batch of gates raises pin caps → power must rise.
	n := 0
	d.NL.Gates(func(g *netlist.Gate) {
		if !g.Fixed && !g.IsPad() && !g.IsSequential() && n < 40 {
			if g.SizeIdx < 0 {
				d.NL.SetSize(g, 3)
			} else if g.SizeIdx+1 < len(g.Cell.Sizes) {
				d.NL.SetSize(g, g.SizeIdx+1)
			}
			n++
		}
	})
	// Resizes don't bump nl.Edits, but the loads the calculator reports
	// change; force the analyzer's view current.
	a.Recompute()
	if after := a.Total(); after <= before {
		t.Errorf("power did not rise after upsizing: %g → %g", before, after)
	}
}

func TestRecoverPowerReducesTotal(t *testing.T) {
	d, calc, a := rig(t, 300, 4)
	// Discretize then bulk-upsize to create recovery headroom; use a very
	// relaxed clock so slack never vetoes.
	st2 := steiner.NewCache(d.NL)
	_ = st2
	eng := timing.New(d.NL, calc, 1e6)
	d.NL.Gates(func(g *netlist.Gate) {
		if !g.Fixed && !g.IsPad() && !g.IsSequential() {
			if g.SizeIdx < 0 {
				d.NL.SetSize(g, 2)
			}
		}
	})
	a.Recompute()
	before := a.Total()
	nrec := RecoverPower(d.NL, eng, a, 0)
	if nrec == 0 {
		t.Fatal("nothing recovered on an oversized relaxed design")
	}
	a.Recompute()
	if after := a.Total(); after >= before {
		t.Errorf("power did not drop: %g → %g", before, after)
	}
}

func TestRecoverPowerRespectsSlack(t *testing.T) {
	d, calc, a := rig(t, 300, 5)
	eng := timing.New(d.NL, calc, d.Period*0.7) // tight
	d.NL.Gates(func(g *netlist.Gate) {
		if !g.Fixed && !g.IsPad() && !g.IsSequential() && g.SizeIdx < 0 {
			d.NL.SetSize(g, 2)
		}
	})
	wsBefore := eng.WorstSlack()
	RecoverPower(d.NL, eng, a, 0)
	if ws := eng.WorstSlack(); ws < wsBefore-1e-6 {
		t.Errorf("power recovery degraded slack: %g → %g", wsBefore, ws)
	}
}
