// Package power implements the switching-power analyzer and the
// power-recovery transform the paper's conclusion lists among the
// methodology's extensions ("other work involves extending algorithms to
// optimize metrics such as noise, congestion, power and yield"). Like the
// timing engine, it is fully incremental: switching activities propagate
// through the same levelized netlist view, and capacitance comes from the
// shared Steiner cache, so power numbers track every transform's edits.
//
// Model: dynamic power of a net is ½·α·C·V²·f with α the switching
// activity at the driver, C the total (wire + pin) capacitance, V the
// supply, and f = 1/period. Activities propagate from inputs/registers
// through simple per-function transfer factors — the standard
// Najm/transition-density style estimate.
package power

import (
	"math"

	"tps/internal/cell"
	"tps/internal/delay"
	"tps/internal/netlist"
	"tps/internal/timing"
)

// Analyzer computes net switching activities and dynamic power.
type Analyzer struct {
	NL   *netlist.Netlist
	Calc *delay.Calculator
	// Vdd is the supply voltage in volts.
	Vdd float64
	// Period is the clock period in ps (f = 1/period).
	Period float64
	// PrimaryActivity is the switching activity assumed at primary
	// inputs; register outputs switch at half of it by default.
	PrimaryActivity float64

	activity []float64 // by net ID; NaN = invalid
	epoch    uint64
}

// New returns an analyzer over the shared calculator (loads must reflect
// the same placement the transforms see).
func New(nl *netlist.Netlist, calc *delay.Calculator, period float64) *Analyzer {
	return &Analyzer{
		NL:              nl,
		Calc:            calc,
		Vdd:             1.8,
		Period:          period,
		PrimaryActivity: 0.2,
	}
}

// transfer returns the output activity of a function given its input
// activity sum and count — coarse transition-density factors.
func transfer(f cell.Func, inSum float64, inputs int) float64 {
	if inputs == 0 {
		return 0
	}
	avg := inSum / float64(inputs)
	switch f {
	case cell.FuncInv, cell.FuncBuf, cell.FuncClkBuf:
		return avg
	case cell.FuncXor2, cell.FuncXnor2:
		// XORs propagate nearly every input transition.
		return math.Min(1, inSum)
	case cell.FuncNand2, cell.FuncNor2, cell.FuncAnd2, cell.FuncOr2:
		return avg * 0.75
	case cell.FuncNand3, cell.FuncNor3, cell.FuncAoi21, cell.FuncOai21:
		return avg * 0.6
	case cell.FuncNand4:
		return avg * 0.5
	case cell.FuncMux2:
		return avg * 0.8
	default:
		return avg * 0.7
	}
}

// Recompute derives activities for every net in topological order. The
// analyzer is cheap enough (one linear pass) that transforms re-run it
// after batches of edits rather than per edit.
func (a *Analyzer) Recompute() {
	n := a.NL.NetCap()
	a.activity = make([]float64, n)
	for i := range a.activity {
		a.activity[i] = -1
	}
	a.epoch = a.NL.Edits

	// Seed sources.
	a.NL.Gates(func(g *netlist.Gate) {
		for _, p := range g.Pins {
			if p.Dir() != cell.Output || p.Net == nil {
				continue
			}
			switch {
			case g.IsPad():
				a.activity[p.Net.ID] = a.PrimaryActivity
			case g.IsSequential():
				a.activity[p.Net.ID] = a.PrimaryActivity / 2
			case g.Cell.Function == cell.FuncClkBuf:
				a.activity[p.Net.ID] = 1 // the clock switches every cycle
			}
		}
	})

	// Propagate through combinational gates with a worklist; the netlist
	// is a DAG (cycles would stall and keep activity at the seed floor).
	changed := true
	for pass := 0; changed && pass < 64; pass++ {
		changed = false
		a.NL.Gates(func(g *netlist.Gate) {
			if g.IsPad() || g.IsSequential() || g.Cell.Function == cell.FuncClkBuf {
				return
			}
			z := g.Output()
			if z == nil || z.Net == nil || a.activity[z.Net.ID] >= 0 {
				return
			}
			sum := 0.0
			inputs := 0
			for _, p := range g.Pins {
				if p.Dir() != cell.Input {
					continue
				}
				inputs++
				if p.Net == nil {
					continue
				}
				v := a.activity[p.Net.ID]
				if v < 0 {
					return // inputs not ready yet
				}
				sum += v
			}
			a.activity[z.Net.ID] = transfer(g.Cell.Function, sum, inputs)
			changed = true
		})
	}
	// Anything unresolved (cycles, floating) gets the primary default.
	for i := range a.activity {
		if a.activity[i] < 0 {
			a.activity[i] = a.PrimaryActivity / 2
		}
	}
}

func (a *Analyzer) ensure() {
	if a.activity == nil || a.epoch != a.NL.Edits {
		a.Recompute()
	}
}

// Activity returns the switching activity of net n (0..1 transitions per
// cycle).
func (a *Analyzer) Activity(n *netlist.Net) float64 {
	a.ensure()
	if n.ID >= len(a.activity) {
		return 0
	}
	return a.activity[n.ID]
}

// NetPower returns the dynamic power of one net in µW.
func (a *Analyzer) NetPower(n *netlist.Net) float64 {
	if a.Period <= 0 {
		return 0
	}
	loadFf := a.Calc.Load(n)
	// ½·α·C·V²·f: fF·V²/ps = µW·10³ → scale: (fF=1e-15F, ps=1e-12s) →
	// W = ½αCV²/T = ½·α·(1e-15)·V²/(T·1e-12) = ½αV²·(C/T)·1e-3 W
	// → in µW: ½αV²·(C_fF/T_ps)·1e3.
	return 0.5 * a.Activity(n) * a.Vdd * a.Vdd * loadFf / a.Period * 1e3
}

// Total returns the total dynamic power in µW.
func (a *Analyzer) Total() float64 {
	a.ensure()
	var sum float64
	a.NL.Nets(func(n *netlist.Net) {
		sum += a.NetPower(n)
	})
	return sum
}

// RecoverPower is the power-recovery transform: downsizes gates whose
// input pins load high-activity nets (downsizing cuts the α·C product of
// exactly those nets) whenever the timing engine confirms the worst slack
// does not degrade. It is the §4.4 area-recovery loop retargeted at power,
// as the paper's conclusion anticipates. Returns accepted downsizes.
func RecoverPower(nl *netlist.Netlist, eng *timing.Engine, a *Analyzer, slackMargin float64) int {
	type cand struct {
		g *netlist.Gate
		p float64 // activity-weighted input capacitance: the saving lever
	}
	var cands []cand
	nl.Gates(func(g *netlist.Gate) {
		if g.Fixed || g.IsPad() || g.IsSequential() || g.SizeIdx <= 0 {
			return
		}
		var lever float64
		for _, p := range g.Pins {
			if p.Dir() == cell.Input && p.Net != nil {
				lever += a.Activity(p.Net) * p.Cap()
			}
		}
		if lever <= 0 {
			return
		}
		cands = append(cands, cand{g, lever})
	})
	// Highest power first: the biggest α·C·V²f wins pay for the slack
	// they consume.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].p > cands[j-1].p; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	wsFloor := eng.WorstSlack()
	accepted := 0
	for _, c := range cands {
		if eng.GateSlack(c.g) < slackMargin {
			continue
		}
		old := c.g.SizeIdx
		nl.SetSize(c.g, old-1)
		if eng.WorstSlack() < wsFloor-1e-9 {
			nl.SetSize(c.g, old)
		} else {
			accepted++
		}
	}
	return accepted
}
