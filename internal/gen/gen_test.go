package gen

import (
	"testing"

	"tps/internal/cell"
	"tps/internal/netlist"
)

func small(t *testing.T) *Design {
	t.Helper()
	return Generate(cell.Default(), gen200())
}

func gen200() Params {
	return Params{Name: "small", NumGates: 200, Levels: 6, RegFraction: 0.2, Seed: 9}
}

func TestGeneratedStructure(t *testing.T) {
	d := small(t)
	nl := d.NL
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	if nl.NumGates() < 200 {
		t.Errorf("gates = %d", nl.NumGates())
	}
	if d.Period <= 0 || d.ChipW <= 0 || d.ChipH <= 0 {
		t.Errorf("bad frame: period=%g chip=%gx%g", d.Period, d.ChipW, d.ChipH)
	}
}

func TestEveryNetDrivenAndUsed(t *testing.T) {
	d := small(t)
	d.NL.Nets(func(n *netlist.Net) {
		if n.Driver() == nil {
			t.Errorf("net %s undriven", n.Name)
		}
		sinks := 0
		for _, p := range n.Pins() {
			if p.Dir() == cell.Input {
				sinks++
			}
		}
		if sinks == 0 {
			t.Errorf("net %s has no sinks", n.Name)
		}
	})
}

func TestEveryInputConnected(t *testing.T) {
	d := small(t)
	d.NL.Gates(func(g *netlist.Gate) {
		if g.IsPad() {
			return
		}
		for _, p := range g.Pins {
			if p.Dir() == cell.Input && p.Net == nil {
				t.Errorf("gate %s pin %s dangling", g.Name, p.Name())
			}
		}
	})
}

func TestClockTreeStructure(t *testing.T) {
	d := small(t)
	nl := d.NL
	clockNets, clockBufs, regs := 0, 0, 0
	nl.Nets(func(n *netlist.Net) {
		if n.Kind == netlist.Clock {
			clockNets++
		}
	})
	nl.Gates(func(g *netlist.Gate) {
		switch g.Cell.Function {
		case cell.FuncClkBuf:
			clockBufs++
		case cell.FuncDFF:
			regs++
		}
	})
	if clockNets == 0 || clockBufs == 0 || regs == 0 {
		t.Fatalf("clock structure missing: nets=%d bufs=%d regs=%d", clockNets, clockBufs, regs)
	}
	// Every register clock pin is connected to a clock net.
	nl.Gates(func(g *netlist.Gate) {
		if g.IsSequential() {
			ck := g.ClockPin()
			if ck.Net == nil || ck.Net.Kind != netlist.Clock {
				t.Errorf("register %s clock pin not on a clock net", g.Name)
			}
		}
	})
}

func TestScanChainStitched(t *testing.T) {
	d := small(t)
	nl := d.NL
	connected := 0
	total := 0
	nl.Gates(func(g *netlist.Gate) {
		if !g.IsSequential() {
			return
		}
		total++
		if g.Pin("SI").Net != nil {
			connected++
		}
	})
	if total == 0 || connected != total {
		t.Fatalf("scan chain incomplete: %d/%d SI pins stitched", connected, total)
	}
	// Pure scan nets exist (spare registers).
	pure := 0
	nl.Nets(func(n *netlist.Net) {
		if n.Kind == netlist.Scan {
			pure++
		}
	})
	if pure == 0 {
		t.Errorf("no pure scan nets generated")
	}
}

func TestPadsFixedOnPerimeter(t *testing.T) {
	d := small(t)
	d.NL.Gates(func(g *netlist.Gate) {
		if !g.IsPad() {
			return
		}
		if !g.Fixed || !g.Placed {
			t.Errorf("pad %s not fixed/placed", g.Name)
		}
		onEdge := g.X == 0 || g.Y == 0 ||
			absf(g.X-d.ChipW) < 1e-6 || absf(g.Y-d.ChipH) < 1e-6
		if !onEdge {
			t.Errorf("pad %s at (%g,%g) off perimeter %gx%g", g.Name, g.X, g.Y, d.ChipW, d.ChipH)
		}
	})
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(cell.Default(), gen200())
	b := Generate(cell.Default(), gen200())
	if a.NL.NumGates() != b.NL.NumGates() || a.NL.NumNets() != b.NL.NumNets() {
		t.Fatalf("generation not deterministic")
	}
	if a.Period != b.Period || a.ChipW != b.ChipW {
		t.Fatalf("frame not deterministic")
	}
}

func TestSeedChangesDesign(t *testing.T) {
	p := gen200()
	a := Generate(cell.Default(), p)
	p.Seed++
	b := Generate(cell.Default(), p)
	// Same sizes but different wiring: compare a structural fingerprint.
	fp := func(d *Design) int {
		sum := 0
		d.NL.Nets(func(n *netlist.Net) { sum += n.NumPins() * (n.ID%7 + 1) })
		return sum
	}
	if fp(a) == fp(b) {
		t.Errorf("different seeds produced identical wiring fingerprint")
	}
}

func TestDesConfigs(t *testing.T) {
	for i := 1; i <= 5; i++ {
		p := Des(i, 0.02)
		d := Generate(cell.Default(), p)
		if err := d.NL.Check(); err != nil {
			t.Errorf("Des%d: %v", i, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Des(9) did not panic")
		}
	}()
	Des(9, 1)
}

func TestChipAreaMatchesUtilization(t *testing.T) {
	d := small(t)
	// The die is sized for the initial X1 area × SizeHeadroom (default 2)
	// at the requested utilization, so the *initial* utilization is
	// roughly Utilization / SizeHeadroom.
	util := d.NL.TotalCellArea() / (d.ChipW * d.ChipH)
	if util < 0.2 || util > 0.5 {
		t.Errorf("initial utilization = %g, want ≈ 0.65/2", util)
	}
}

func TestClassifyNetKinds(t *testing.T) {
	nl := netlist.New("t", cell.Default())
	lib := nl.Lib
	dff := nl.AddGate("r", lib.Cell("DFF"))
	buf := nl.AddGate("b", lib.Cell("CLKBUF"))
	ck := nl.AddNet("ck")
	nl.Connect(buf.Output(), ck)
	nl.Connect(dff.ClockPin(), ck)
	drv := nl.AddGate("d", lib.Cell("INV"))
	sn := nl.AddNet("sn")
	nl.Connect(drv.Output(), sn)
	nl.Connect(dff.Pin("SI"), sn)
	ClassifyNetKinds(nl)
	if ck.Kind != netlist.Clock {
		t.Errorf("clock net kind = %v", ck.Kind)
	}
	if sn.Kind != netlist.Scan {
		t.Errorf("pure scan net kind = %v", sn.Kind)
	}
	// Add a data sink → no longer pure scan.
	g2 := nl.AddGate("g2", lib.Cell("INV"))
	nl.Connect(g2.Pin("A"), sn)
	ClassifyNetKinds(nl)
	if sn.Kind != netlist.Signal {
		t.Errorf("mixed net kind = %v", sn.Kind)
	}
}
