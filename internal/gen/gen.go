// Package gen generates synthetic designs that stand in for the paper's
// proprietary testcases (five partitions of a mainframe processor). The
// generator builds leveled random logic with Rent-style locality knobs,
// pipeline registers, a pre-built (unoptimized) clock-buffer tree, a
// stitched scan chain, and peripheral IO pads — every structural feature
// the TPS transforms of §4 operate on.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"tps/internal/cell"
	"tps/internal/netlist"
)

// Params configures Generate.
type Params struct {
	Name string
	// NumGates is the approximate number of combinational gates.
	NumGates int
	// RegFraction is the register count as a fraction of NumGates.
	RegFraction float64
	// Levels is the combinational depth between register stages.
	Levels int
	// NumPI / NumPO are primary IO counts (pads).
	NumPI, NumPO int
	// LocalBias is the probability that a gate input comes from the
	// immediately preceding level (higher → more local, Rent-like
	// connectivity). The remainder is drawn from a geometric tail over
	// earlier levels.
	LocalBias float64
	// HubFraction of source selections use preferential attachment,
	// creating the high-fanout nets buffering/cloning exist for.
	HubFraction float64
	// SpareRegFraction of registers have scan-only outputs, producing the
	// pure scan nets §4.5 zero-weights.
	SpareRegFraction float64
	// RegsPerClockBuffer sets the initial (pre-optimization) clock tree
	// arity.
	RegsPerClockBuffer int
	// Utilization is the chip fill target used to size the die.
	Utilization float64
	// SizeHeadroom scales the die area above the initial (X1, sizeless)
	// cell area to leave room for gain-based discretization, speed
	// sizing, and buffer/clone insertion. Default 2.0.
	SizeHeadroom float64
	// Period overrides the clock period in ps (0 → derived from depth).
	Period float64
	// PeriodScale tightens (<1) or relaxes (>1) the derived period.
	PeriodScale float64
	Seed        int64
}

// Des returns the generator configuration for the Table 1 design with the
// given index (1–5), scaled by scale (1.0 = paper-sized; tests use less).
// Cell counts are chosen so the *placeable instance* totals land near the
// paper's icells column (18622, 25927, 39734, 21584, 14780 for SPR runs).
func Des(i int, scale float64) Params {
	type row struct {
		gates  int
		levels int
		reg    float64
	}
	rows := map[int]row{
		1: {15200, 14, 0.16},
		2: {21200, 16, 0.15},
		3: {32500, 15, 0.14},
		4: {17600, 18, 0.15},
		5: {12100, 12, 0.16},
	}
	r, ok := rows[i]
	if !ok {
		panic(fmt.Sprintf("gen: no Des%d", i))
	}
	ng := int(float64(r.gates) * scale)
	if ng < 60 {
		ng = 60
	}
	return Params{
		Name:               fmt.Sprintf("Des%d", i),
		NumGates:           ng,
		RegFraction:        r.reg,
		Levels:             r.levels,
		NumPI:              maxInt(8, ng/160),
		NumPO:              maxInt(8, ng/200),
		LocalBias:          0.62,
		HubFraction:        0.06,
		SpareRegFraction:   0.05,
		RegsPerClockBuffer: 36,
		Utilization:        0.65,
		PeriodScale:        0.92,
		Seed:               int64(1000 + i),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Design is a generated netlist plus its physical frame and constraint.
type Design struct {
	NL     *netlist.Netlist
	Period float64 // ps
	ChipW  float64 // µm
	ChipH  float64 // µm
}

// Generate builds a design from p over lib.
func Generate(lib *cell.Library, p Params) *Design {
	fillDefaults(&p)
	rng := rand.New(rand.NewSource(p.Seed))
	nl := netlist.New(p.Name, lib)

	numRegs := int(float64(p.NumGates) * p.RegFraction)
	if numRegs < 1 {
		numRegs = 1
	}

	// --- sources: input pads and registers ---
	padCell := lib.First(cell.FuncPad)
	dffCell := lib.First(cell.FuncDFF)
	clkbufCell := lib.First(cell.FuncClkBuf)

	var piNets []*netlist.Net
	var piPads []*netlist.Gate
	for i := 0; i < p.NumPI; i++ {
		pad := nl.AddGate("pi"+strconv.Itoa(i), padCell)
		pad.SizeIdx = 0
		pad.Fixed = true
		n := nl.AddNet("pi" + strconv.Itoa(i) + "_n")
		nl.Connect(pad.Pin("O"), n)
		piNets = append(piNets, n)
		piPads = append(piPads, pad)
	}

	var regs []*netlist.Gate
	var regQNets []*netlist.Net
	for i := 0; i < numRegs; i++ {
		r := nl.AddGate("reg"+strconv.Itoa(i), dffCell)
		r.SizeIdx = 0
		n := nl.AddNet("reg" + strconv.Itoa(i) + "_q")
		nl.Connect(r.Pin("Q"), n)
		regs = append(regs, r)
		regQNets = append(regQNets, n)
	}
	numSpare := int(float64(numRegs) * p.SpareRegFraction)

	// --- combinational levels ---
	// sources[l] holds driver nets whose output level is l; level 0 are
	// PIs and register Qs (spare register Qs excluded from data use).
	sources := make([][]*netlist.Net, p.Levels+1)
	sources[0] = append(sources[0], piNets...)
	for i, n := range regQNets {
		if i >= numRegs-numSpare {
			continue // spare: scan-only
		}
		sources[0] = append(sources[0], n)
	}
	// unused[l] queues nets at level l not yet consumed by any sink, so
	// every driver ends up used.
	unused := make([][]*netlist.Net, p.Levels+1)
	unused[0] = append(unused[0], sources[0]...)

	// hubs get preferential re-selection to create high-fanout nets.
	var hubs []*netlist.Net

	combFuncs := []struct {
		f cell.Func
		w int
	}{
		{cell.FuncNand2, 26}, {cell.FuncInv, 14}, {cell.FuncNor2, 10},
		{cell.FuncNand3, 9}, {cell.FuncAoi21, 8}, {cell.FuncOai21, 6},
		{cell.FuncXor2, 6}, {cell.FuncAnd2, 5}, {cell.FuncOr2, 5},
		{cell.FuncMux2, 4}, {cell.FuncNand4, 3}, {cell.FuncXnor2, 2},
		{cell.FuncBuf, 2},
	}
	totW := 0
	for _, cf := range combFuncs {
		totW += cf.w
	}
	pickFunc := func() *cell.Cell {
		r := rng.Intn(totW)
		for _, cf := range combFuncs {
			r -= cf.w
			if r < 0 {
				return lib.First(cf.f)
			}
		}
		return lib.First(cell.FuncNand2)
	}

	pickSource := func(level int) *netlist.Net {
		// Drain unconsumed outputs of the previous level first.
		if q := unused[level-1]; len(q) > 0 {
			n := q[len(q)-1]
			unused[level-1] = q[:len(q)-1]
			return n
		}
		if len(hubs) > 0 && rng.Float64() < p.HubFraction {
			return hubs[rng.Intn(len(hubs))]
		}
		l := level - 1
		if rng.Float64() >= p.LocalBias {
			// Geometric tail over earlier levels.
			for l > 0 && rng.Float64() < 0.5 {
				l--
			}
		}
		for l >= 0 {
			if len(sources[l]) > 0 {
				return sources[l][rng.Intn(len(sources[l]))]
			}
			l--
		}
		return piNets[rng.Intn(len(piNets))]
	}

	gatesPerLevel := p.NumGates / p.Levels
	gid := 0
	for lvl := 1; lvl <= p.Levels; lvl++ {
		count := gatesPerLevel
		if lvl == p.Levels {
			count = p.NumGates - gatesPerLevel*(p.Levels-1)
		}
		for i := 0; i < count; i++ {
			c := pickFunc()
			g := nl.AddGate("u"+strconv.Itoa(gid), c)
			gid++
			for _, pin := range g.Pins {
				if pin.Dir() != cell.Input {
					continue
				}
				nl.Connect(pin, pickSource(lvl))
			}
			n := nl.AddNet("u" + strconv.Itoa(gid-1) + "_z")
			nl.Connect(g.Output(), n)
			sources[lvl] = append(sources[lvl], n)
			unused[lvl] = append(unused[lvl], n)
			if rng.Float64() < 0.02 {
				hubs = append(hubs, n)
			}
		}
	}

	// --- register D inputs: close the pipeline loop ---
	lastLvl := p.Levels
	pickSink := func() *netlist.Net {
		if q := unused[lastLvl]; len(q) > 0 {
			n := q[len(q)-1]
			unused[lastLvl] = q[:len(q)-1]
			return n
		}
		for l := lastLvl; l >= 0; l-- {
			if len(sources[l]) > 0 {
				return sources[l][rng.Intn(len(sources[l]))]
			}
		}
		return piNets[0]
	}
	for _, r := range regs {
		nl.Connect(r.Pin("D"), pickSink())
	}

	// --- primary outputs ---
	var poPads []*netlist.Gate
	for i := 0; i < p.NumPO; i++ {
		pad := nl.AddGate("po"+strconv.Itoa(i), padCell)
		pad.SizeIdx = 0
		pad.Fixed = true
		nl.Connect(pad.Pin("I"), pickSink())
		poPads = append(poPads, pad)
	}
	// Drain any still-unused outputs into extra POs so no driver dangles.
	for l := 0; l <= p.Levels; l++ {
		for _, n := range unused[l] {
			if n.NumPins() > 1 {
				continue
			}
			pad := nl.AddGate("po_x"+strconv.Itoa(len(poPads)), padCell)
			pad.SizeIdx = 0
			pad.Fixed = true
			nl.Connect(pad.Pin("I"), n)
			poPads = append(poPads, pad)
		}
	}

	// --- clock tree: pad → root net → buffers → leaf nets → CK pins ---
	clkPad := nl.AddGate("clk_pad", padCell)
	clkPad.SizeIdx = 0
	clkPad.Fixed = true
	clkRoot := nl.AddNet("clk_root")
	nl.Connect(clkPad.Pin("O"), clkRoot)
	numBufs := (numRegs + p.RegsPerClockBuffer - 1) / p.RegsPerClockBuffer
	for b := 0; b < numBufs; b++ {
		cb := nl.AddGate("clkbuf"+strconv.Itoa(b), clkbufCell)
		cb.SizeIdx = 1
		nl.Connect(cb.Pin("A"), clkRoot)
		leaf := nl.AddNet("clk_leaf" + strconv.Itoa(b))
		nl.Connect(cb.Output(), leaf)
		for i := b; i < numRegs; i += numBufs {
			nl.Connect(regs[i].ClockPin(), leaf)
		}
	}

	// --- scan chain: scan-in pad → SI → Q → SI … → scan-out pad ---
	scanIn := nl.AddGate("scan_in", padCell)
	scanIn.SizeIdx = 0
	scanIn.Fixed = true
	siNet := nl.AddNet("scan_in_n")
	nl.Connect(scanIn.Pin("O"), siNet)
	nl.Connect(regs[0].Pin("SI"), siNet)
	for i := 1; i < numRegs; i++ {
		nl.Connect(regs[i].Pin("SI"), regQNets[i-1])
	}
	scanOut := nl.AddGate("scan_out", padCell)
	scanOut.SizeIdx = 0
	scanOut.Fixed = true
	nl.Connect(scanOut.Pin("I"), regQNets[numRegs-1])

	nl.ClassifyKinds()

	// --- die and pad placement ---
	area := nl.TotalCellArea() * p.SizeHeadroom / p.Utilization
	side := math.Sqrt(area)
	// Snap to a whole number of rows.
	rows := math.Ceil(side / lib.Tech.RowHeight)
	chipH := rows * lib.Tech.RowHeight
	chipW := side
	placePadsOnPerimeter(nl, chipW, chipH)

	period := p.Period
	if period == 0 {
		// Derived: gain-based stage delay × depth × scale, plus register
		// overhead; deliberately aggressive so both flows end negative,
		// as in Table 1.
		stage := (2.2 + 1.6*4.0) * lib.Tech.Tau
		clk2q := (6.0 + 1.5*4.0) * lib.Tech.Tau
		period = (float64(p.Levels)*stage + clk2q) * p.PeriodScale
	}

	return &Design{NL: nl, Period: period, ChipW: chipW, ChipH: chipH}
}

func fillDefaults(p *Params) {
	if p.NumGates <= 0 {
		p.NumGates = 1000
	}
	if p.Levels <= 0 {
		p.Levels = 10
	}
	if p.RegFraction <= 0 {
		p.RegFraction = 0.15
	}
	if p.NumPI <= 0 {
		p.NumPI = 16
	}
	if p.NumPO <= 0 {
		p.NumPO = 16
	}
	if p.LocalBias <= 0 {
		p.LocalBias = 0.6
	}
	if p.RegsPerClockBuffer <= 0 {
		p.RegsPerClockBuffer = 36
	}
	if p.Utilization <= 0 {
		p.Utilization = 0.65
	}
	if p.PeriodScale <= 0 {
		p.PeriodScale = 0.92
	}
	if p.SpareRegFraction < 0 {
		p.SpareRegFraction = 0
	}
	if p.SizeHeadroom <= 0 {
		p.SizeHeadroom = 2.0
	}
	if p.Name == "" {
		p.Name = "design"
	}
}

// placePadsOnPerimeter distributes fixed pads evenly around the die edge.
func placePadsOnPerimeter(nl *netlist.Netlist, w, h float64) {
	var pads []*netlist.Gate
	nl.Gates(func(g *netlist.Gate) {
		if g.IsPad() {
			pads = append(pads, g)
		}
	})
	n := len(pads)
	if n == 0 {
		return
	}
	perim := 2 * (w + h)
	for i, g := range pads {
		d := perim * float64(i) / float64(n)
		var x, y float64
		switch {
		case d < w:
			x, y = d, 0
		case d < w+h:
			x, y = w, d-w
		case d < 2*w+h:
			x, y = w-(d-w-h), h
		default:
			x, y = 0, h-(d-2*w-h)
		}
		nl.MoveGate(g, x, y)
	}
}

// ClassifyNetKinds derives each net's kind from its sinks; it delegates
// to netlist.ClassifyKinds and exists for backward-compatible call sites.
func ClassifyNetKinds(nl *netlist.Netlist) { nl.ClassifyKinds() }
