package tps

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestMillionCellFlow is the scale acceptance run for the ID-indexed
// netlist layout: a generated 1M-cell design must complete the TPS flow
// end-to-end. It takes over an hour on one core, so it only runs when
// TPS_SCALE_E2E=1 is set; the measured result is recorded in
// EXPERIMENTS.md ("million-cell netlist layout").
func TestMillionCellFlow(t *testing.T) {
	if os.Getenv("TPS_SCALE_E2E") == "" {
		t.Skip("set TPS_SCALE_E2E=1 to run the million-cell end-to-end flow")
	}
	t0 := time.Now()
	d := NewDesign(DesignParams{Name: "million", NumGates: 1000000, Levels: 24, Seed: 7})
	defer d.Close()
	d.SetWorkers(1)
	fmt.Printf("E2E gen done n=%d nets=%d after %v\n",
		d.Netlist().NumGates(), d.Netlist().NumNets(), time.Since(t0))

	opt := DefaultTPSOptions()
	opt.Step = 100 // one coarse status round: scale validation, not QoR tuning
	m := d.RunTPS(opt)
	s := d.Stats()
	fmt.Printf("E2E 1M TPS done in %v icells=%d slack=%.2f tns=%.2f wire=%.0f routed=%.0f ovf=%d recomputes=%d\n",
		time.Since(t0), m.ICells, m.WorstSlack, m.TNS, m.SteinerWireUm, m.RoutedWireUm, m.RouteOverflows, s.TimingRecomputes)
	if m.ICells <= 0 || m.CycleAchieved <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
}
